// Package fluid is the flow-level fast path of the simulator: flows are
// rate allocations over paths instead of per-packet events. On every flow
// arrival, finish, pause, or reroute the engine updates a progressive
// max-min fair-share waterfilling over the links the active flows traverse
// (the standard fluid approximation of per-flow TCP throughput), and
// advances every flow's residual by its allocated rate between events. A
// simulation's event count is O(flows), not O(packets) — the fidelity tier
// that turns the paper's 128 servers into 100k+ hosts at flat wall clock.
//
// The rate allocation is maintained incrementally by IncSolver: an event
// only re-waterfills the bottleneck-connected component its touched links
// reach, same-instant arrivals coalesce into one solve through a flush
// event, transfers settle lazily (each one only when its own rate changes
// or a threshold crossing fires), and the single wake event is aimed by an
// indexed min-heap of crossing instants instead of an active-set scan. The
// steady-state event loop performs zero heap allocations.
//
// The model shares everything above the packet layer with the packet
// engine: internal/topo fabric shapes, internal/workload generators,
// internal/stats sketches, and — crucially — the exact ECMP hash draws of
// internal/routing. Path selection reuses routing.PathKeyHash with
// arithmetically derived switch salts, so a flow lands on the same (agg,
// core) pair, hash collisions included, as it would in the packet engine.
//
// What it models beyond rate shares:
//
//   - slow start, as per-RTT doubling transmission budgets with idle gaps
//     when a window is exhausted before its round-trip closes (mice cost
//     zero extra events; an elephant costs a handful);
//   - a streaming window cap (MaxCwnd/RTT) once slow start clears;
//   - FlowBender rerouting, driven by core.FlowBender.OnEpochF with the
//     marked-ACK fraction estimated from link utilization via an
//     M/M/1-style marking model (host NIC egress excluded: that queue is
//     unbounded and never marks, exactly as in netsim.Host);
//   - RepFlow replication (two full copies under independent hash draws,
//     first finisher wins) and short-flow spraying (one session per path
//     sharing the flow's budget) below the scheme cutoffs;
//   - queueing latency, as M/M/1 waiting terms clamped at the DCTCP
//     threshold (switch ports) or the window backlog (host NICs), folded
//     into each flow's completion tail.
//
// What it deliberately does not model: per-packet ECN marks and DCTCP's
// alpha dynamics, packet loss, retransmission timeouts, reordering, PFC
// back-pressure, and flowlet gaps (Flowlet/FlowDyn degrade to per-flow
// ECMP). The packet engine stays ground truth for those; the FidelityMatrix
// experiment quantifies the residual divergence per scheme.
package fluid

import (
	"math"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

// Config parameterizes one fluid simulation.
type Config struct {
	// Params is the fat-tree shape (shared with the packet engine).
	Params topo.Params

	// Spray spreads flows below ShortCutoff evenly over every path between
	// their endpoints (the fluid model of RPS/DeTail/DiffFlow spraying).
	Spray bool
	// Replicate runs flows below ShortCutoff as two full copies under
	// independent hash draws, first finisher wins (RepFlow).
	Replicate bool
	// ShortCutoff is the size boundary for Spray/Replicate, in payload
	// bytes. Use math.MaxInt64 to apply the policy to every flow.
	ShortCutoff int64

	// FlowBender, when non-nil, attaches a rerouting controller to every
	// flow, driven from the utilization-based marking estimate once per
	// global RTT epoch.
	FlowBender *core.Config

	// SolverShards is the maximum number of parallel workers the rate
	// solver may spread a large multi-component re-solve across. 0 or 1
	// keeps every solve serial. Any value produces bit-identical results
	// (see IncSolver); the knob only trades cores for wall clock.
	SolverShards int

	// Transport constants; zero values take DCTCP's defaults (MSS 1460,
	// 40-byte headers, initial window 10 segments, 224 KiB max window).
	MSS          int
	HeaderBytes  int
	InitCwndSegs int
	MaxCwndBytes int
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = netsim.HeaderBytes
	}
	if c.InitCwndSegs == 0 {
		c.InitCwndSegs = 10
	}
	if c.MaxCwndBytes == 0 {
		c.MaxCwndBytes = 224 * 1024
	}
	return c
}

// Done reports one completed flow to the harness.
type Done struct {
	ID       netsim.FlowID
	Size     int64 // payload bytes
	FCT      sim.Time
	Reroutes int64 // FlowBender reroutes of this flow
	UserTag  int32 // opaque value passed to Arrive (workload pattern kind)
}

// xfer states.
const (
	xRun    uint8 = iota // draining at the solved rate
	xPaused              // slow-start window exhausted, waiting for the RTT edge
)

// xfer is one transfer in flight: a slow-start budget machine over a pool
// of residual wire bits, drained through one solver session per path.
type xfer struct {
	group  int32
	id     netsim.FlowID
	src    int32
	dst    int32
	prefix uint64 // flow-constant ECMP hash prefix
	tag    uint32 // current path tag (FlowBender's V)

	state      uint8
	hasFB      bool
	round      int16
	remain     float64 // wire bits left, exact as of settled
	budget     float64 // wire bits left in the current slow-start round; <0 = streaming
	roundStart sim.Time
	settled    sim.Time // instant remain/budget are exact at (lazy settling)
	rtt        sim.Time // base round-trip of the path class
	rate       float64  // total allocated rate from the last solve

	paths []pathRef // 1 entry normally; one per path when sprayed
	sess  []int32   // solver session per path (empty while paused)
}

// group is the completion unit the harness observes: one per Arrive call,
// covering both copies of a replicated flow.
type group struct {
	id      netsim.FlowID
	size    int64
	userTag int32
	arrive  sim.Time
	done    bool
	members [2]int32
	nMember int8
}

// Sim is one fluid simulation, hosted on a sim.Engine so checkpointing,
// drain loops, and throughput accounting work exactly as for the packet
// engine.
type Sim struct {
	// OnDone receives every completed flow, at its completion instant.
	OnDone func(Done)
	// Completed counts flows delivered so far.
	Completed int64
	// Reroutes accumulates FlowBender reroutes across completed flows.
	Reroutes int64

	eng *sim.Engine
	cfg Config
	net *Net

	xfers  []xfer
	fbs    []core.FlowBender // by-value controller per xfer slot (hasFB gates)
	freeX  []int32
	groups []group
	freeG  []int32
	active []int32 // live xfer indices; swap-remove, deterministic order

	inc   IncSolver
	owner []int32 // solver session -> owning xfer, -1 when free

	heap etaHeap

	flushPend bool
	flushFn   func() // prebuilt closures: the steady-state loop never allocates
	wakeFn    func()
	epochFn   func()
	wake      *sim.Event
	wakeAt    sim.Time
	epochEv   *sim.Event
	nFB       int

	segWire     float64 // wire bits of one full segment
	ackWire     float64 // wire bits of one bare ACK
	maxCwndWire float64 // wire bits of a full MaxCwnd window
	rttEpoch    sim.Time
}

// NewSim builds a fluid simulation on eng.
func NewSim(eng *sim.Engine, cfg Config) *Sim {
	cfg = cfg.withDefaults()
	s := &Sim{eng: eng, cfg: cfg, net: NewNet(cfg.Params)}
	wirePkt := float64(cfg.MSS + cfg.HeaderBytes)
	s.segWire = wirePkt * 8
	s.ackWire = float64(cfg.HeaderBytes) * 8
	s.maxCwndWire = float64(cfg.MaxCwndBytes) / float64(cfg.MSS) * s.segWire
	s.rttEpoch = s.pathRTT(maxPathLinks)
	s.inc.Reset(s.net.caps, s.net.marking)
	s.inc.SetShards(cfg.SolverShards)
	s.flushFn = s.onFlush
	s.wakeFn = s.onWake
	s.epochFn = s.epochTick
	return s
}

// Engine returns the hosting event engine.
func (s *Sim) Engine() *sim.Engine { return s.eng }

// ActiveFlows returns the number of transfers currently in flight.
func (s *Sim) ActiveFlows() int { return len(s.active) }

// wireBits returns the on-the-wire size of a payload in bits: every MSS of
// payload carries one header, exactly as the packet engine frames it.
func (s *Sim) wireBits(size int64) float64 {
	segs := (size + int64(s.cfg.MSS) - 1) / int64(s.cfg.MSS)
	if segs < 1 {
		segs = 1
	}
	return float64(size+segs*int64(s.cfg.HeaderBytes)) * 8
}

// ssBudget returns the slow-start transmission budget of round r in wire
// bits (the initial window doubling each round-trip).
func (s *Sim) ssBudget(r int16) float64 {
	if r >= 30 {
		return s.maxCwndWire
	}
	return float64(s.cfg.InitCwndSegs) * s.segWire * float64(int64(1)<<uint(r))
}

// pathRTT returns the unloaded round-trip of a path with nl links: host and
// switch delays both ways plus one full segment serializing at every hop
// forward and one ACK back.
func (s *Sim) pathRTT(nl int8) sim.Time {
	ow := s.net.owBase(nl)
	var ser float64
	for i := 0; i < int(nl); i++ {
		ser += (s.segWire + s.ackWire) / float64(s.cfg.Params.LinkRateBps)
	}
	return 2*ow + sim.Time(ser*float64(sim.Second))
}

// Arrive starts one flow at the engine's current instant. src and dst are
// host indices (identical to netsim.NodeID for hosts). userTag is echoed in
// the Done record.
//
// Arrivals only stage solver work: a flush event at the same instant (fired
// after every same-instant arrival, by the engine's insertion ordering)
// folds the whole batch into a single incremental solve — an incast of N
// flows costs one re-waterfill, not N.
func (s *Sim) Arrive(id netsim.FlowID, src, dst int32, size int64, userTag int32) {
	gi := s.allocGroup()
	g := &s.groups[gi]
	*g = group{id: id, size: size, userTag: userTag, arrive: s.eng.Now()}

	replicate := s.cfg.Replicate && size < s.cfg.ShortCutoff
	s.addXfer(gi, id, src, dst, size)
	if replicate {
		s.addXfer(gi, tcp.ReplicaID(id), src, dst, size)
	}
	s.scheduleFlush()
	if s.nFB > 0 && s.epochEv == nil {
		s.epochEv = s.eng.Schedule(s.rttEpoch, s.epochFn)
	}
}

// addXfer creates one transfer of a group and activates it.
func (s *Sim) addXfer(gi int32, id netsim.FlowID, src, dst int32, size int64) {
	xi := s.allocXfer()
	x := &s.xfers[xi]
	paths := x.paths[:0]
	sess := x.sess[:0]
	now := s.eng.Now()
	*x = xfer{group: gi, id: id, src: src, dst: dst, state: xRun, roundStart: now, settled: now}

	srcPort, dstPort := tcp.PortsFor(id)
	x.prefix = FlowPrefix(src, dst, srcPort, dstPort)
	if s.cfg.FlowBender != nil {
		s.fbs[xi] = core.Make(*s.cfg.FlowBender)
		x.hasFB = true
		x.tag = s.fbs[xi].PathTag()
		s.nFB++
	}
	if s.cfg.Spray && size < s.cfg.ShortCutoff {
		x.paths = s.net.sprayPaths(paths, src, dst)
	} else {
		var pr pathRef
		s.net.singlePath(&pr, x.prefix, x.tag, src, dst)
		x.paths = append(paths, pr)
	}
	x.rtt = s.pathRTT(x.paths[0].n)
	x.remain = s.wireBits(size)
	x.budget = s.ssBudget(0)
	if x.budget >= s.maxCwndWire {
		x.budget = -1
	}
	x.sess = sess
	s.addSessions(x, xi)

	g := &s.groups[gi]
	g.members[g.nMember] = xi
	g.nMember++
	s.active = append(s.active, xi)
}

// sessCap returns the per-session rate cap of a transfer: unbounded while
// the slow-start budget gates transmission, the streaming window rate
// (split evenly over a sprayed flow's paths) once slow start is done.
func (s *Sim) sessCap(x *xfer) float64 {
	if x.budget < 0 {
		return s.maxCwndWire / x.rtt.Seconds() / float64(len(x.paths))
	}
	return math.Inf(1)
}

// addSessions registers one solver session per path of x.
func (s *Sim) addSessions(x *xfer, xi int32) {
	c := s.sessCap(x)
	for pi := range x.paths {
		p := &x.paths[pi]
		sid := s.inc.Add(p.links[:p.n], c)
		x.sess = append(x.sess, sid)
		for int(sid) >= len(s.owner) {
			s.owner = append(s.owner, -1)
		}
		s.owner[sid] = xi
	}
}

// dropSessions retires all of x's solver sessions (pause or removal).
func (s *Sim) dropSessions(x *xfer) {
	for _, sid := range x.sess {
		s.owner[sid] = -1
		s.inc.Remove(sid)
	}
	x.sess = x.sess[:0]
}

// FlowPrefix returns the flow-constant ECMP hash prefix of a TCP flow
// between two hosts — the same value the packet engine's sender stamps into
// every data packet of the flow (host NodeIDs equal host indices).
func FlowPrefix(src, dst int32, srcPort, dstPort uint16) uint64 {
	return routing.FlowHashPrefix(netsim.NodeID(src), netsim.NodeID(dst), srcPort, dstPort, netsim.ProtoTCP)
}

// settleTo advances one transfer's residuals to now at its current rate.
// Rates are constant between the solver commits that touch a transfer, so
// settling only at those instants (plus the transfer's own crossings) is
// exact — no global per-event settle scan.
func (s *Sim) settleTo(x *xfer, now sim.Time) {
	dt := (now - x.settled).Seconds()
	x.settled = now
	if dt <= 0 || x.state != xRun || x.rate <= 0 {
		return
	}
	used := x.rate * dt
	x.remain -= used
	if x.budget >= 0 {
		// Clamp: a finite budget must not cross into the negative range
		// that encodes "streaming" (slow start done).
		if x.budget -= used; x.budget < 0 {
			x.budget = 0
		}
	}
}

// residual tolerance, in wire bits: ETAs are ceiled to the next nanosecond,
// so a crossing leaves at most rate*1ns ≈ tens of bits of float slack.
const doneEps = 0.5

// scheduleFlush commits the staged solver work — immediately when this is
// the instant's last event, through a same-instant flush event otherwise, so
// an incast batch (or an arrival sharing its instant with a wake) still
// folds into a single re-solve. The peek costs one bucket access; the usual
// lone arrival commits inline and schedules nothing.
func (s *Sim) scheduleFlush() {
	if s.flushPend {
		return
	}
	if t, ok := s.eng.NextAt(); ok && t == s.eng.Now() {
		s.flushPend = true
		s.eng.At(t, s.flushFn)
		return
	}
	s.commitApply()
}

func (s *Sim) onFlush() {
	s.flushPend = false
	s.commitApply()
}

// commitApply commits any staged solver work, folds re-solved rates into
// their transfers (settling each to the current instant first), and re-aims
// the wake event at the earliest crossing.
func (s *Sim) commitApply() {
	if s.inc.Pending() {
		s.inc.Commit()
		now := s.eng.Now()
		for _, sid := range s.inc.Affected() {
			xi := s.owner[sid]
			if xi < 0 {
				continue
			}
			x := &s.xfers[xi]
			s.settleTo(x, now)
			var r float64
			for _, id := range x.sess {
				r += s.inc.Rate(id)
			}
			x.rate = r
			s.updateEta(xi, now)
		}
	}
	s.retargetWake()
}

// updateEta re-computes transfer xi's next threshold crossing and fixes its
// heap position.
func (s *Sim) updateEta(xi int32, now sim.Time) {
	x := &s.xfers[xi]
	if x.state != xRun || x.rate <= 0 {
		s.heap.Remove(xi)
		return
	}
	b := x.remain
	if x.budget >= 0 && x.budget < b {
		b = x.budget
	}
	var eta sim.Time
	if b <= doneEps {
		eta = now + 1
	} else {
		eta = x.settled + sim.Time(math.Ceil(b/x.rate*float64(sim.Second)))
		if eta <= now {
			eta = now + 1
		}
	}
	s.heap.Set(xi, eta)
}

// drainDue processes every transfer whose crossing instant has arrived:
// completions (which can retire sibling transfers) and slow-start round
// edges. Solver work is staged; the caller commits.
func (s *Sim) drainDue() {
	now := s.eng.Now()
	for s.heap.Len() > 0 {
		xi, eta := s.heap.Min()
		if eta > now {
			break
		}
		x := &s.xfers[xi]
		if x.state == xPaused {
			// The round-trip edge arrived: reopen the window. The new
			// sessions solve in the caller's commit, whose updateEta files
			// the transfer back into the heap at its real crossing.
			x.settled = now
			x.state = xRun
			s.advanceRound(x)
			s.addSessions(x, xi)
			s.heap.Remove(xi)
			continue
		}
		s.settleTo(x, now)
		if x.remain <= doneEps {
			s.finish(xi)
			continue
		}
		if x.budget >= 0 && x.budget <= doneEps {
			// Window exhausted. If the round-trip edge already passed, the
			// ACKs are back: open the next round in place. Otherwise idle
			// until the edge, parked in the heap at the resume instant — the
			// wake event covers slow-start edges, so a pause/resume cycle
			// costs no engine event of its own.
			if now >= x.roundStart+x.rtt {
				s.advanceRound(x)
				if x.budget < 0 {
					// Entered streaming: the session caps change.
					c := s.sessCap(x)
					for _, sid := range x.sess {
						s.inc.SetCap(sid, c)
					}
				}
				s.updateEta(xi, now)
			} else {
				x.state = xPaused
				s.dropSessions(x)
				s.heap.Set(xi, x.roundStart+x.rtt)
			}
			continue
		}
		// Float slack left the crossing short; re-aim strictly past now.
		s.updateEta(xi, now)
	}
}

// advanceRound opens transfer x's next slow-start round at the current
// instant, switching to streaming mode once the window reaches MaxCwnd.
func (s *Sim) advanceRound(x *xfer) {
	x.round++
	b := s.ssBudget(x.round)
	if b >= s.maxCwndWire {
		x.budget = -1
	} else {
		x.budget = b
	}
	x.roundStart = s.eng.Now()
}

// finish retires the group of transfer xi: the first finisher defines the
// flow's completion (RepFlow's first-copy-wins), every member is removed.
// The completion tail uses the standing-queue marks of the last solve, as
// every finisher at this instant shares one pre-commit queue snapshot.
func (s *Sim) finish(xi int32) {
	x := &s.xfers[xi]
	gi := x.group
	g := &s.groups[gi]
	if !g.done {
		g.done = true
		var reroutes int64
		for m := int8(0); m < g.nMember; m++ {
			if mi := g.members[m]; s.xfers[mi].hasFB {
				reroutes += s.fbs[mi].Stats().Reroutes
			}
		}
		fct := s.eng.Now() + s.tail(x) - g.arrive
		s.Completed++
		s.Reroutes += reroutes
		if s.OnDone != nil {
			s.OnDone(Done{ID: g.id, Size: g.size, FCT: fct, Reroutes: reroutes, UserTag: g.userTag})
		}
	}
	for m := int8(0); m < g.nMember; m++ {
		s.removeXfer(g.members[m])
	}
	s.freeG = append(s.freeG, gi)
}

// removeXfer deactivates one transfer and recycles its slot.
func (s *Sim) removeXfer(xi int32) {
	x := &s.xfers[xi]
	if x.hasFB {
		s.nFB--
		x.hasFB = false
	}
	s.dropSessions(x)
	s.heap.Remove(xi)
	for i, a := range s.active {
		if a == xi {
			s.active[i] = s.active[len(s.active)-1]
			s.active = s.active[:len(s.active)-1]
			break
		}
	}
	s.freeX = append(s.freeX, xi)
}

// retargetWake re-aims the single wake event at the earliest crossing.
func (s *Sim) retargetWake() {
	if s.heap.Len() == 0 {
		if s.wake != nil {
			s.eng.Cancel(s.wake)
			s.wake = nil
		}
		return
	}
	_, best := s.heap.Min()
	if s.wake != nil {
		if best >= s.wakeAt {
			// The crossing moved later (or not at all): keep the armed wake.
			// Firing early is a cheap no-op that re-aims, cheaper than the
			// cancel-and-reschedule churn every arrival commit would pay.
			return
		}
		s.eng.Cancel(s.wake)
	}
	s.wakeAt = best
	s.wake = s.eng.At(best, s.wakeFn)
}

func (s *Sim) onWake() {
	s.wake = nil
	s.drainDue()
	s.commitApply()
}

// epochTick closes one global RTT epoch for every FlowBender-controlled
// transfer: the marked-ACK fraction is estimated from the current path
// utilization and fed to the controller; reroutes re-draw the path with the
// new tag, exactly as the packet transport re-stamps V. The whole epoch's
// reroutes batch into one solver commit.
func (s *Sim) epochTick() {
	s.epochEv = nil
	if s.nFB == 0 {
		return
	}
	s.drainDue()
	for _, xi := range s.active {
		x := &s.xfers[xi]
		if !x.hasFB || x.state != xRun {
			continue
		}
		if s.fbs[xi].OnEpochF(s.pathF(x)) {
			x.tag = s.fbs[xi].PathTag()
			p := &x.paths[0]
			s.net.singlePath(p, x.prefix, x.tag, x.src, x.dst)
			s.inc.SetLinks(x.sess[0], p.links[:p.n])
		}
	}
	s.commitApply()
	if s.nFB > 0 {
		s.epochEv = s.eng.Schedule(s.rttEpoch, s.epochFn)
	}
}

// pathF estimates FlowBender's congestion signal — the fraction of the
// epoch's ACKs carrying ECN marks — over a transfer's current path: 1 when
// the path crosses a standing queue (DCTCP marks nearly every packet
// passing an occupancy pinned at K, far above any reasonable threshold T),
// else 0. The fluid model has no transient sub-threshold marking; the
// fidelity harness quantifies what that smoothing costs. The standing-queue
// marks are maintained incrementally by the solver's first-saturated-link
// rule (see IncSolver.firstSatMark), which distinguishes true contention
// from coincidental full utilization.
func (s *Sim) pathF(x *xfer) float64 {
	p := &x.paths[0]
	for i := int8(0); i < p.n; i++ {
		if s.inc.Queued(p.links[i]) {
			return 1
		}
	}
	return 0
}

// tail returns the latency between a transfer's last bit leaving the sender
// and its delivery: the constant one-way base, per-hop store-and-forward of
// the final packet past the first link (whose serialization the drain rate
// already covers), and ~K/2 of waiting at every standing queue on the path
// — DCTCP's marking makes the occupancy oscillate between the threshold and
// the post-backoff trough, so the time-average a transiting packet waits
// behind is about half of K, not K itself. A sprayed transfer completes
// when its last packet lands, and that packet rides whichever path is
// slowest, so the tail is the worst path's, not the first's (this is the
// fluid image of the reordering penalty sprayed short flows pay in the
// packet engine).
func (s *Sim) tail(x *xfer) sim.Time {
	last := s.lastPktBits(x)
	kBits := float64(8*s.cfg.Params.MarkK) / 2
	var worst sim.Time
	for pi := range x.paths {
		p := &x.paths[pi]
		sec := 0.0
		for i := int8(1); i < p.n; i++ {
			l := p.links[i]
			sec += last / s.net.caps[l]
			if s.inc.Queued(l) {
				sec += kBits / s.net.caps[l]
			}
		}
		t := s.net.owBase(p.n) + sim.Time(sec*float64(sim.Second))
		if t > worst {
			worst = t
		}
	}
	return worst
}

// lastPktBits returns the wire size of a transfer's final packet.
func (s *Sim) lastPktBits(x *xfer) float64 {
	g := &s.groups[x.group]
	rem := g.size % int64(s.cfg.MSS)
	if rem == 0 {
		rem = int64(s.cfg.MSS)
	}
	if g.size < rem {
		rem = g.size
	}
	return float64(rem+int64(s.cfg.HeaderBytes)) * 8
}

func (s *Sim) allocXfer() int32 {
	if n := len(s.freeX); n > 0 {
		xi := s.freeX[n-1]
		s.freeX = s.freeX[:n-1]
		return xi
	}
	s.xfers = append(s.xfers, xfer{})
	s.fbs = append(s.fbs, core.FlowBender{})
	xi := int32(len(s.xfers) - 1)
	s.heap.ensure(len(s.xfers))
	return xi
}

func (s *Sim) allocGroup() int32 {
	if n := len(s.freeG); n > 0 {
		gi := s.freeG[n-1]
		s.freeG = s.freeG[:n-1]
		return gi
	}
	s.groups = append(s.groups, group{})
	return int32(len(s.groups) - 1)
}
