// Package fluid is the flow-level fast path of the simulator: flows are
// rate allocations over paths instead of per-packet events. On every flow
// arrival, finish, pause, or reroute the engine re-solves a progressive
// max-min fair-share waterfilling over the links the active flows traverse
// (the standard fluid approximation of per-flow TCP throughput), and
// advances every flow's residual by its allocated rate between events. A
// simulation's event count is O(flows), not O(packets) — the fidelity tier
// that turns the paper's 128 servers into 10k+ hosts at flat wall clock.
//
// The model shares everything above the packet layer with the packet
// engine: internal/topo fabric shapes, internal/workload generators,
// internal/stats sketches, and — crucially — the exact ECMP hash draws of
// internal/routing. Path selection reuses routing.PathKeyHash with
// arithmetically derived switch salts, so a flow lands on the same (agg,
// core) pair, hash collisions included, as it would in the packet engine.
//
// What it models beyond rate shares:
//
//   - slow start, as per-RTT doubling transmission budgets with idle gaps
//     when a window is exhausted before its round-trip closes (mice cost
//     zero extra events; an elephant costs a handful);
//   - a streaming window cap (MaxCwnd/RTT) once slow start clears;
//   - FlowBender rerouting, driven by core.FlowBender.OnEpochF with the
//     marked-ACK fraction estimated from link utilization via an
//     M/M/1-style marking model (host NIC egress excluded: that queue is
//     unbounded and never marks, exactly as in netsim.Host);
//   - RepFlow replication (two full copies under independent hash draws,
//     first finisher wins) and short-flow spraying (one session per path
//     sharing the flow's budget) below the scheme cutoffs;
//   - queueing latency, as M/M/1 waiting terms clamped at the DCTCP
//     threshold (switch ports) or the window backlog (host NICs), folded
//     into each flow's completion tail.
//
// What it deliberately does not model: per-packet ECN marks and DCTCP's
// alpha dynamics, packet loss, retransmission timeouts, reordering, PFC
// back-pressure, and flowlet gaps (Flowlet/FlowDyn degrade to per-flow
// ECMP). The packet engine stays ground truth for those; the FidelityMatrix
// experiment quantifies the residual divergence per scheme.
package fluid

import (
	"math"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

// Config parameterizes one fluid simulation.
type Config struct {
	// Params is the fat-tree shape (shared with the packet engine).
	Params topo.Params

	// Spray spreads flows below ShortCutoff evenly over every path between
	// their endpoints (the fluid model of RPS/DeTail/DiffFlow spraying).
	Spray bool
	// Replicate runs flows below ShortCutoff as two full copies under
	// independent hash draws, first finisher wins (RepFlow).
	Replicate bool
	// ShortCutoff is the size boundary for Spray/Replicate, in payload
	// bytes. Use math.MaxInt64 to apply the policy to every flow.
	ShortCutoff int64

	// FlowBender, when non-nil, attaches a rerouting controller to every
	// flow, driven from the utilization-based marking estimate once per
	// global RTT epoch.
	FlowBender *core.Config

	// Transport constants; zero values take DCTCP's defaults (MSS 1460,
	// 40-byte headers, initial window 10 segments, 224 KiB max window).
	MSS          int
	HeaderBytes  int
	InitCwndSegs int
	MaxCwndBytes int
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = netsim.HeaderBytes
	}
	if c.InitCwndSegs == 0 {
		c.InitCwndSegs = 10
	}
	if c.MaxCwndBytes == 0 {
		c.MaxCwndBytes = 224 * 1024
	}
	return c
}

// Done reports one completed flow to the harness.
type Done struct {
	ID       netsim.FlowID
	Size     int64 // payload bytes
	FCT      sim.Time
	Reroutes int64 // FlowBender reroutes of this flow
	UserTag  int32 // opaque value passed to Arrive (workload pattern kind)
}

// xfer states.
const (
	xRun    uint8 = iota // draining at the solved rate
	xPaused              // slow-start window exhausted, waiting for the RTT edge
)

// xfer is one transfer in flight: a slow-start budget machine over a pool
// of residual wire bits, drained through one session per path.
type xfer struct {
	group  int32
	id     netsim.FlowID
	src    int32
	dst    int32
	prefix uint64 // flow-constant ECMP hash prefix
	tag    uint32 // current path tag (FlowBender's V)

	state      uint8
	round      int16
	remain     float64 // wire bits left
	budget     float64 // wire bits left in the current slow-start round; <0 = streaming
	roundStart sim.Time
	rtt        sim.Time // base round-trip of the path class
	rate       float64  // total allocated rate from the last solve

	fb     *core.FlowBender
	paths  []pathRef // 1 entry normally; one per path when sprayed
	resume *sim.Event
}

// group is the completion unit the harness observes: one per Arrive call,
// covering both copies of a replicated flow.
type group struct {
	id      netsim.FlowID
	size    int64
	userTag int32
	arrive  sim.Time
	done    bool
	members [2]int32
	nMember int8
}

// Sim is one fluid simulation, hosted on a sim.Engine so checkpointing,
// drain loops, and throughput accounting work exactly as for the packet
// engine.
type Sim struct {
	// OnDone receives every completed flow, at its completion instant.
	OnDone func(Done)
	// Completed counts flows delivered so far.
	Completed int64
	// Reroutes accumulates FlowBender reroutes across completed flows.
	Reroutes int64

	eng *sim.Engine
	cfg Config
	net *Net

	xfers  []xfer
	freeX  []int32
	groups []group
	freeG  []int32
	active []int32 // live xfer indices; swap-remove, deterministic order

	wf         waterfiller
	dirty      bool
	lastSettle sim.Time
	wake       *sim.Event
	wakeAt     sim.Time
	epochEv    *sim.Event
	nFB        int

	// Standing-queue tracking (see computeQueues): markStamp[l] == markGen
	// when link l holds a standing queue under the last solve.
	markStamp   []uint32
	markGen     uint32
	queuesValid bool

	segWire     float64 // wire bits of one full segment
	ackWire     float64 // wire bits of one bare ACK
	maxCwndWire float64 // wire bits of a full MaxCwnd window
	rttEpoch    sim.Time
}

// NewSim builds a fluid simulation on eng.
func NewSim(eng *sim.Engine, cfg Config) *Sim {
	cfg = cfg.withDefaults()
	s := &Sim{eng: eng, cfg: cfg, net: NewNet(cfg.Params)}
	wirePkt := float64(cfg.MSS + cfg.HeaderBytes)
	s.segWire = wirePkt * 8
	s.ackWire = float64(cfg.HeaderBytes) * 8
	s.maxCwndWire = float64(cfg.MaxCwndBytes) / float64(cfg.MSS) * s.segWire
	s.markStamp = make([]uint32, s.net.nLinks)
	s.rttEpoch = s.pathRTT(maxPathLinks)
	return s
}

// Engine returns the hosting event engine.
func (s *Sim) Engine() *sim.Engine { return s.eng }

// ActiveFlows returns the number of transfers currently in flight.
func (s *Sim) ActiveFlows() int { return len(s.active) }

// wireBits returns the on-the-wire size of a payload in bits: every MSS of
// payload carries one header, exactly as the packet engine frames it.
func (s *Sim) wireBits(size int64) float64 {
	segs := (size + int64(s.cfg.MSS) - 1) / int64(s.cfg.MSS)
	if segs < 1 {
		segs = 1
	}
	return float64(size+segs*int64(s.cfg.HeaderBytes)) * 8
}

// ssBudget returns the slow-start transmission budget of round r in wire
// bits (the initial window doubling each round-trip).
func (s *Sim) ssBudget(r int16) float64 {
	if r >= 30 {
		return s.maxCwndWire
	}
	return float64(s.cfg.InitCwndSegs) * s.segWire * float64(int64(1)<<uint(r))
}

// pathRTT returns the unloaded round-trip of a path with nl links: host and
// switch delays both ways plus one full segment serializing at every hop
// forward and one ACK back.
func (s *Sim) pathRTT(nl int8) sim.Time {
	ow := s.net.owBase(nl)
	var ser float64
	for i := 0; i < int(nl); i++ {
		ser += (s.segWire + s.ackWire) / float64(s.cfg.Params.LinkRateBps)
	}
	return 2*ow + sim.Time(ser*float64(sim.Second))
}

// Arrive starts one flow at the engine's current instant. src and dst are
// host indices (identical to netsim.NodeID for hosts). userTag is echoed in
// the Done record.
func (s *Sim) Arrive(id netsim.FlowID, src, dst int32, size int64, userTag int32) {
	s.settle()
	gi := s.allocGroup()
	g := &s.groups[gi]
	*g = group{id: id, size: size, userTag: userTag, arrive: s.eng.Now()}

	replicate := s.cfg.Replicate && size < s.cfg.ShortCutoff
	s.addXfer(gi, id, src, dst, size)
	if replicate {
		s.addXfer(gi, tcp.ReplicaID(id), src, dst, size)
	}
	s.dirty = true
	s.sweep()
	s.solveRetarget()
	if s.nFB > 0 && s.epochEv == nil {
		s.epochEv = s.eng.Schedule(s.rttEpoch, s.epochTick)
	}
}

// addXfer creates one transfer of a group and activates it.
func (s *Sim) addXfer(gi int32, id netsim.FlowID, src, dst int32, size int64) {
	xi := s.allocXfer()
	x := &s.xfers[xi]
	paths := x.paths[:0]
	*x = xfer{group: gi, id: id, src: src, dst: dst, state: xRun, roundStart: s.eng.Now()}

	srcPort, dstPort := tcp.PortsFor(id)
	x.prefix = FlowPrefix(src, dst, srcPort, dstPort)
	if s.cfg.FlowBender != nil {
		fbc := *s.cfg.FlowBender
		x.fb = core.New(fbc)
		x.tag = x.fb.PathTag()
		s.nFB++
	}
	if s.cfg.Spray && size < s.cfg.ShortCutoff {
		x.paths = s.net.sprayPaths(paths, src, dst)
	} else {
		var pr pathRef
		s.net.singlePath(&pr, x.prefix, x.tag, src, dst)
		x.paths = append(paths, pr)
	}
	x.rtt = s.pathRTT(x.paths[0].n)
	x.remain = s.wireBits(size)
	x.budget = s.ssBudget(0)
	if x.budget >= s.maxCwndWire {
		x.budget = -1
	}

	g := &s.groups[gi]
	g.members[g.nMember] = xi
	g.nMember++
	s.active = append(s.active, xi)
}

// FlowPrefix returns the flow-constant ECMP hash prefix of a TCP flow
// between two hosts — the same value the packet engine's sender stamps into
// every data packet of the flow (host NodeIDs equal host indices).
func FlowPrefix(src, dst int32, srcPort, dstPort uint16) uint64 {
	return routing.FlowHashPrefix(netsim.NodeID(src), netsim.NodeID(dst), srcPort, dstPort, netsim.ProtoTCP)
}

// settle advances every running transfer's residuals by its allocated rate
// over the time since the last settle point. Rates are constant between
// solver events, so this is exact.
func (s *Sim) settle() {
	now := s.eng.Now()
	dt := (now - s.lastSettle).Seconds()
	s.lastSettle = now
	if dt <= 0 {
		return
	}
	for _, xi := range s.active {
		x := &s.xfers[xi]
		if x.state != xRun || x.rate <= 0 {
			continue
		}
		used := x.rate * dt
		x.remain -= used
		if x.budget >= 0 {
			// Clamp: a finite budget must not cross into the negative range
			// that encodes "streaming" (slow start done).
			if x.budget -= used; x.budget < 0 {
				x.budget = 0
			}
		}
	}
}

// residual tolerance, in wire bits: ETAs are ceiled to the next nanosecond,
// so a crossing leaves at most rate*1ns ≈ tens of bits of float slack.
const doneEps = 0.5

// sweep processes every threshold crossed at the current instant:
// completions first (they can retire sibling transfers), then slow-start
// round edges.
func (s *Sim) sweep() {
	for changed := true; changed; {
		changed = false
		for _, xi := range s.active {
			x := &s.xfers[xi]
			if x.state == xRun && x.remain <= doneEps {
				s.finish(xi)
				changed = true
				break
			}
		}
	}
	now := s.eng.Now()
	for _, xi := range s.active {
		x := &s.xfers[xi]
		if x.state != xRun || x.budget < 0 || x.budget > doneEps || x.remain <= doneEps {
			continue
		}
		// Window exhausted. If the round-trip edge already passed, the ACKs
		// are back: open the next round in place. Otherwise idle until the
		// edge.
		if now >= x.roundStart+x.rtt {
			s.advanceRound(x)
		} else {
			x.state = xPaused
			xi := xi
			x.resume = s.eng.At(x.roundStart+x.rtt, func() { s.onResume(xi) })
		}
		s.dirty = true
	}
}

// advanceRound opens transfer x's next slow-start round at the current
// instant, switching to streaming mode once the window reaches MaxCwnd.
func (s *Sim) advanceRound(x *xfer) {
	x.round++
	b := s.ssBudget(x.round)
	if b >= s.maxCwndWire {
		x.budget = -1
	} else {
		x.budget = b
	}
	x.roundStart = s.eng.Now()
}

func (s *Sim) onResume(xi int32) {
	x := &s.xfers[xi]
	x.resume = nil
	s.settle()
	x.state = xRun
	s.advanceRound(x)
	s.dirty = true
	s.sweep()
	s.solveRetarget()
}

// finish retires the group of transfer xi: the first finisher defines the
// flow's completion (RepFlow's first-copy-wins), every member is removed.
func (s *Sim) finish(xi int32) {
	x := &s.xfers[xi]
	gi := x.group
	g := &s.groups[gi]
	if !g.done {
		g.done = true
		var reroutes int64
		for m := int8(0); m < g.nMember; m++ {
			if fb := s.xfers[g.members[m]].fb; fb != nil {
				reroutes += fb.Stats().Reroutes
			}
		}
		fct := s.eng.Now() + s.tail(x) - g.arrive
		s.Completed++
		s.Reroutes += reroutes
		if s.OnDone != nil {
			s.OnDone(Done{ID: g.id, Size: g.size, FCT: fct, Reroutes: reroutes, UserTag: g.userTag})
		}
	}
	for m := int8(0); m < g.nMember; m++ {
		s.removeXfer(g.members[m])
	}
	s.freeG = append(s.freeG, gi)
	s.dirty = true
}

// removeXfer deactivates one transfer and recycles its slot.
func (s *Sim) removeXfer(xi int32) {
	x := &s.xfers[xi]
	if x.resume != nil {
		s.eng.Cancel(x.resume)
		x.resume = nil
	}
	if x.fb != nil {
		s.nFB--
		x.fb = nil
	}
	for i, a := range s.active {
		if a == xi {
			s.active[i] = s.active[len(s.active)-1]
			s.active = s.active[:len(s.active)-1]
			break
		}
	}
	s.freeX = append(s.freeX, xi)
}

// solveRetarget re-solves the rate allocation if the active set changed and
// re-aims the wake event at the earliest next threshold crossing.
func (s *Sim) solveRetarget() {
	if s.dirty {
		s.solve()
		s.dirty = false
	}
	s.retarget()
}

// solve runs the waterfiller over the active transfers: one session per
// path, capped at the streaming window rate (split evenly over a sprayed
// flow's paths) once slow start is done.
func (s *Sim) solve() {
	w := &s.wf
	w.begin(s.net.caps)
	for _, xi := range s.active {
		x := &s.xfers[xi]
		if x.state != xRun {
			continue
		}
		cap := math.Inf(1)
		if x.budget < 0 {
			cap = s.maxCwndWire / x.rtt.Seconds() / float64(len(x.paths))
		}
		for pi := range x.paths {
			p := &x.paths[pi]
			w.add(p.links[:p.n], cap)
		}
	}
	w.solve()
	s.queuesValid = false
	k := 0
	for _, xi := range s.active {
		x := &s.xfers[xi]
		if x.state != xRun {
			continue
		}
		var r float64
		for range x.paths {
			r += w.rate[k]
			k++
		}
		x.rate = r
	}
}

// retarget re-aims the single wake event at the earliest completion or
// budget-exhaustion instant among the running transfers.
func (s *Sim) retarget() {
	now := s.eng.Now()
	best := sim.Time(math.MaxInt64)
	for _, xi := range s.active {
		x := &s.xfers[xi]
		if x.state != xRun || x.rate <= 0 {
			continue
		}
		b := x.remain
		if x.budget >= 0 && x.budget < b {
			b = x.budget
		}
		var eta sim.Time
		if b <= doneEps {
			eta = now + 1
		} else {
			eta = now + sim.Time(math.Ceil(b/x.rate*float64(sim.Second)))
			if eta <= now {
				eta = now + 1
			}
		}
		if eta < best {
			best = eta
		}
	}
	if best == sim.Time(math.MaxInt64) {
		if s.wake != nil {
			s.eng.Cancel(s.wake)
			s.wake = nil
		}
		return
	}
	if s.wake != nil {
		if s.wakeAt == best {
			return
		}
		s.eng.Cancel(s.wake)
	}
	s.wakeAt = best
	s.wake = s.eng.At(best, s.onWake)
}

func (s *Sim) onWake() {
	s.wake = nil
	s.settle()
	s.sweep()
	s.solveRetarget()
}

// epochTick closes one global RTT epoch for every FlowBender-controlled
// transfer: the marked-ACK fraction is estimated from the current path
// utilization and fed to the controller; reroutes re-draw the path with the
// new tag, exactly as the packet transport re-stamps V.
func (s *Sim) epochTick() {
	s.epochEv = nil
	if s.nFB == 0 {
		return
	}
	s.settle()
	s.sweep()
	for _, xi := range s.active {
		x := &s.xfers[xi]
		if x.fb == nil || x.state != xRun {
			continue
		}
		if x.fb.OnEpochF(s.pathF(x)) {
			x.tag = x.fb.PathTag()
			s.net.singlePath(&x.paths[0], x.prefix, x.tag, x.src, x.dst)
			s.dirty = true
		}
	}
	s.solveRetarget()
	if s.nFB > 0 {
		s.epochEv = s.eng.Schedule(s.rttEpoch, s.epochTick)
	}
}

// satThresh is the utilization at which a link counts as saturated. The
// solver's freezing levels put bottlenecked links numerically at 1, so this
// only needs to reject genuinely-below-capacity links.
const satThresh = 0.999

// computeQueues locates the standing queues under the last-solved rates.
// A windowed sender's congestion control (DCTCP here) builds a persistent
// queue at its flow's *first saturated link* — upstream links pace the flow
// below their capacity, so queues cannot stand anywhere else. When that
// link is the sender's own NIC the queue is invisible to the fabric (the
// NIC queue is unbounded and unmarked, and its delay is already covered by
// the flow's drain rate). When it is a switch egress port, DCTCP pins the
// queue's occupancy near the marking threshold K: every flow crossing the
// link sees marked ACKs and an extra ~K of queueing delay.
//
// This "first saturated link" rule is what distinguishes true contention
// from coincidental full utilization: two access-limited flows sharing one
// exactly-full ToR uplink saturate it without queueing (their first
// saturated link is their own NIC), while three flows squeezed below
// access rate by that uplink make it their first saturated link and mark.
func (s *Sim) computeQueues() {
	if s.queuesValid {
		return
	}
	s.queuesValid = true
	s.markGen++
	for _, xi := range s.active {
		x := &s.xfers[xi]
		if x.state != xRun {
			continue
		}
		for pi := range x.paths {
			p := &x.paths[pi]
			for i := int8(0); i < p.n; i++ {
				l := p.links[i]
				if s.wf.util(l) >= satThresh {
					if s.net.marking[l] {
						s.markStamp[l] = s.markGen
					}
					break
				}
			}
		}
	}
}

// queued reports whether link l holds a standing queue under the last solve.
func (s *Sim) queued(l int32) bool { return s.markStamp[l] == s.markGen }

// pathF estimates FlowBender's congestion signal — the fraction of the
// epoch's ACKs carrying ECN marks — over a transfer's current path: 1 when
// the path crosses a standing queue (DCTCP marks nearly every packet
// passing an occupancy pinned at K, far above any reasonable threshold T),
// else 0. The fluid model has no transient sub-threshold marking; the
// fidelity harness quantifies what that smoothing costs.
func (s *Sim) pathF(x *xfer) float64 {
	s.computeQueues()
	p := &x.paths[0]
	for i := int8(0); i < p.n; i++ {
		if s.queued(p.links[i]) {
			return 1
		}
	}
	return 0
}

// tail returns the latency between a transfer's last bit leaving the sender
// and its delivery: the constant one-way base, per-hop store-and-forward of
// the final packet past the first link (whose serialization the drain rate
// already covers), and ~K/2 of waiting at every standing queue on the path
// — DCTCP's marking makes the occupancy oscillate between the threshold and
// the post-backoff trough, so the time-average a transiting packet waits
// behind is about half of K, not K itself. A sprayed transfer completes
// when its last packet lands, and that packet rides whichever path is
// slowest, so the tail is the worst path's, not the first's (this is the
// fluid image of the reordering penalty sprayed short flows pay in the
// packet engine).
func (s *Sim) tail(x *xfer) sim.Time {
	s.computeQueues()
	last := s.lastPktBits(x)
	kBits := float64(8*s.cfg.Params.MarkK) / 2
	var worst sim.Time
	for pi := range x.paths {
		p := &x.paths[pi]
		sec := 0.0
		for i := int8(1); i < p.n; i++ {
			l := p.links[i]
			sec += last / s.net.caps[l]
			if s.queued(l) {
				sec += kBits / s.net.caps[l]
			}
		}
		t := s.net.owBase(p.n) + sim.Time(sec*float64(sim.Second))
		if t > worst {
			worst = t
		}
	}
	return worst
}

// lastPktBits returns the wire size of a transfer's final packet.
func (s *Sim) lastPktBits(x *xfer) float64 {
	g := &s.groups[x.group]
	rem := g.size % int64(s.cfg.MSS)
	if rem == 0 {
		rem = int64(s.cfg.MSS)
	}
	if g.size < rem {
		rem = g.size
	}
	return float64(rem+int64(s.cfg.HeaderBytes)) * 8
}

func (s *Sim) allocXfer() int32 {
	if n := len(s.freeX); n > 0 {
		xi := s.freeX[n-1]
		s.freeX = s.freeX[:n-1]
		return xi
	}
	s.xfers = append(s.xfers, xfer{})
	return int32(len(s.xfers) - 1)
}

func (s *Sim) allocGroup() int32 {
	if n := len(s.freeG); n > 0 {
		gi := s.freeG[n-1]
		s.freeG = s.freeG[:n-1]
		return gi
	}
	s.groups = append(s.groups, group{})
	return int32(len(s.groups) - 1)
}
