package fluid

import (
	"math"

	"flowbender/internal/sim"
	"flowbender/internal/topo"
)

// Analytical is the closed-form M/G/1 twin of the fluid engine: mean flow
// completion time for uniform all-to-all traffic, from nothing but the
// topology shape, the offered load, and the flow-size distribution's first
// two moments. It brackets both simulation engines — far coarser than
// either, but with zero free parameters, so a fluid result that drifts
// outside its bounds signals a model bug rather than a fidelity gap.
//
// The model: each flow crosses the access stage and (when inter-pod) the
// core stage. The core stage is a single aggregated bottleneck at the
// fabric's bisection, loaded at the offered load rho; its queueing delay is
// the Pollaczek–Khinchine mean wait of an M/G/1 queue with the workload's
// service-size distribution. Ideal load balancing is assumed — hash
// collisions, rerouting transients, and slow start are exactly what the
// simulations add on top.
type Analytical struct {
	p topo.Params

	// MeanServiceSec is E[S]: mean flow wire time at access rate.
	MeanServiceSec float64
	// Rho is the offered core-stage load (fraction of bisection).
	Rho float64
	// MeanWaitSec is the P-K mean wait W at the core stage.
	MeanWaitSec float64
	// BaseRTT is the unloaded inter-pod round-trip.
	BaseRTT sim.Time
}

// NewAnalytical builds the twin for an all-to-all workload at the given
// load (fraction of bisection bandwidth), with flow sizes of the given mean
// and second moment (bytes and bytes²).
func NewAnalytical(p topo.Params, load, meanBytes, m2Bytes float64) *Analytical {
	a := &Analytical{p: p, Rho: load}
	rate := float64(p.LinkRateBps)
	// Wire inflation: one header per MSS of payload (MSS/header constants
	// are the transport defaults shared by both engines).
	const mss, hdr = 1460.0, 40.0
	infl := (mss + hdr) / mss
	a.MeanServiceSec = meanBytes * 8 * infl / rate
	// P-K: W = lambda * E[S^2] / (2 (1 - rho)), with lambda recovered from
	// rho = lambda * E[S].
	if load > 0 && load < 1 {
		es2 := m2Bytes * (8 * infl / rate) * (8 * infl / rate)
		lambda := load / a.MeanServiceSec
		a.MeanWaitSec = lambda * es2 / (2 * (1 - load))
	} else if load >= 1 {
		a.MeanWaitSec = math.Inf(1)
	}
	// Inter-pod path: 6 links, 5 switches.
	a.BaseRTT = 2*(2*p.HostDelay+5*p.SwitchDelay) +
		sim.Time(2*(mss+hdr+hdr)*8/rate*float64(sim.Second))
	return a
}

// MeanFCTLower returns the no-queueing lower bound on mean FCT: service at
// full access rate plus the one-way base latency.
func (a *Analytical) MeanFCTLower() sim.Time {
	return sim.Time(a.MeanServiceSec*float64(sim.Second)) + a.BaseRTT/2
}

// MeanFCT returns the M/G/1 estimate: lower bound plus the core-stage
// Pollaczek–Khinchine wait. +Inf at or above saturation.
func (a *Analytical) MeanFCT() sim.Time {
	if math.IsInf(a.MeanWaitSec, 1) {
		return sim.Time(math.MaxInt64)
	}
	return a.MeanFCTLower() + sim.Time(a.MeanWaitSec*float64(sim.Second))
}
