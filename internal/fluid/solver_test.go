package fluid

import (
	"math"
	"math/rand"
	"testing"
)

// checkMaxMin verifies the two defining properties of a max-min fair
// allocation against the inputs: feasibility on every link, and per-session
// bottleneck optimality (each session runs at its cap or crosses a
// saturated link on which no session holds a meaningfully larger rate).
func checkMaxMin(t *testing.T, capacity []float64, sessions []Session, rates []float64) {
	t.Helper()
	if len(rates) != len(sessions) {
		t.Fatalf("got %d rates for %d sessions", len(rates), len(sessions))
	}
	clean := func(c float64) float64 {
		if c < 0 || math.IsNaN(c) {
			return 0
		}
		if math.IsInf(c, 1) || c > hugeCap {
			return hugeCap
		}
		return c
	}
	used := make([]float64, len(capacity))
	for si, s := range sessions {
		if rates[si] < 0 || math.IsNaN(rates[si]) {
			t.Fatalf("session %d: invalid rate %v", si, rates[si])
		}
		for _, l := range s.Links {
			if l >= 0 && int(l) < len(capacity) {
				used[l] += rates[si]
			}
		}
	}
	for l, u := range used {
		c := clean(capacity[l])
		if u > c*(1+1e-6)+1e-9 {
			t.Fatalf("link %d over capacity: used %v > cap %v", l, u, c)
		}
	}
	for si, s := range sessions {
		cap := s.Cap
		if cap <= 0 || math.IsNaN(cap) || math.IsInf(cap, 1) {
			cap = hugeCap
		}
		r := rates[si]
		if r >= cap*(1-1e-6) {
			continue // frozen at its own cap
		}
		inFabric := 0
		bottlenecked := false
		for _, l := range s.Links {
			if l < 0 || int(l) >= len(capacity) {
				continue
			}
			inFabric++
			c := clean(capacity[l])
			saturated := used[l] >= c*(1-1e-6)-1e-9
			if !saturated {
				continue
			}
			// No other session on l may hold a meaningfully larger rate.
			maxOther := 0.0
			for sj, o := range sessions {
				if sj == si {
					continue
				}
				for _, ol := range o.Links {
					if ol == l && rates[sj] > maxOther {
						maxOther = rates[sj]
					}
				}
			}
			if maxOther <= r*(1+1e-6)+1e-9 {
				bottlenecked = true
				break
			}
		}
		if inFabric == 0 {
			continue // linkless: nothing to certify
		}
		if !bottlenecked {
			t.Fatalf("session %d: rate %v below cap %v with no bottleneck link", si, r, cap)
		}
	}
}

func TestWaterfillKnownCases(t *testing.T) {
	// Three flows on one 10 Gb/s link: equal thirds.
	caps := []float64{10e9}
	rates := Waterfill(caps, []Session{
		{Links: []int32{0}}, {Links: []int32{0}}, {Links: []int32{0}},
	})
	for i, r := range rates {
		if math.Abs(r-10e9/3) > 1 {
			t.Fatalf("flow %d: got %v, want 10G/3", i, r)
		}
	}

	// Classic triangle: link 0 shared by sessions A and B, link 1 by B and
	// C; cap 10 and 20. A=5, B=5 (bottleneck link 0), C=15.
	caps = []float64{10, 20}
	rates = Waterfill(caps, []Session{
		{Links: []int32{0}},
		{Links: []int32{0, 1}},
		{Links: []int32{1}},
	})
	want := []float64{5, 5, 15}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-6 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}

	// A session cap binds below the fair share: capped at 2, the other
	// takes the rest.
	caps = []float64{10}
	rates = Waterfill(caps, []Session{
		{Links: []int32{0}, Cap: 2},
		{Links: []int32{0}},
	})
	if math.Abs(rates[0]-2) > 1e-9 || math.Abs(rates[1]-8) > 1e-6 {
		t.Fatalf("rates = %v, want [2 8]", rates)
	}

	// Two access-limited flows exactly filling a shared fat link: both get
	// their access rate, the fat link sits at 100% without constraining.
	caps = []float64{10, 10, 20}
	rates = Waterfill(caps, []Session{
		{Links: []int32{0, 2}},
		{Links: []int32{1, 2}},
	})
	if math.Abs(rates[0]-10) > 1e-6 || math.Abs(rates[1]-10) > 1e-6 {
		t.Fatalf("rates = %v, want [10 10]", rates)
	}
}

// TestWaterfillProperty drives the solver with randomized fabrics and
// session sets and checks the max-min certificate on every instance.
func TestWaterfillProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(12)
		caps := make([]float64, nl)
		for i := range caps {
			switch rng.Intn(10) {
			case 0:
				caps[i] = 0
			case 1:
				caps[i] = math.Inf(1)
			default:
				caps[i] = float64(1+rng.Intn(1000)) * 1e7
			}
		}
		ns := rng.Intn(20)
		sessions := make([]Session, ns)
		for i := range sessions {
			np := rng.Intn(5)
			links := make([]int32, np)
			for j := range links {
				links[j] = int32(rng.Intn(nl))
			}
			var cap float64
			if rng.Intn(3) == 0 {
				cap = float64(1+rng.Intn(100)) * 1e7
			}
			sessions[i] = Session{Links: links, Cap: cap}
		}
		rates := Waterfill(caps, sessions)
		checkMaxMin(t, caps, sessions, rates)
	}
}

// TestWaterfillReuse checks that a reused waterfiller (the engine's mode of
// operation) produces identical results to a fresh one across solves of
// different shapes.
func TestWaterfillReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var w waterfiller
	for trial := 0; trial < 50; trial++ {
		nl := 1 + rng.Intn(8)
		caps := make([]float64, nl)
		for i := range caps {
			caps[i] = float64(1+rng.Intn(100)) * 1e8
		}
		ns := rng.Intn(10)
		sessions := make([]Session, ns)
		for i := range sessions {
			links := make([]int32, rng.Intn(4))
			for j := range links {
				links[j] = int32(rng.Intn(nl))
			}
			sessions[i] = Session{Links: links}
		}
		fresh := Waterfill(caps, sessions)
		w.begin(caps)
		for _, s := range sessions {
			w.add(s.Links, s.Cap)
		}
		w.solve()
		for i := range fresh {
			if w.rate[i] != fresh[i] {
				t.Fatalf("trial %d session %d: reused %v != fresh %v", trial, i, w.rate[i], fresh[i])
			}
		}
	}
}

// TestWaterfillUtil pins the utilization accounting the congestion signal
// reads.
func TestWaterfillUtil(t *testing.T) {
	var w waterfiller
	caps := []float64{10, 20, 30}
	w.begin(caps)
	w.add([]int32{0, 1}, 0)
	w.add([]int32{1}, 4)
	w.solve()
	// Session 0 gets 10 (link 0), session 1 its cap 4. Link 1 carries 14/20.
	if u := w.util(0); math.Abs(u-1) > 1e-9 {
		t.Fatalf("util(0) = %v, want 1", u)
	}
	if u := w.util(1); math.Abs(u-0.7) > 1e-9 {
		t.Fatalf("util(1) = %v, want 0.7", u)
	}
	if u := w.util(2); u != 0 {
		t.Fatalf("util(2) = %v, want 0 (untouched)", u)
	}
}
