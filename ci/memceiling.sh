#!/usr/bin/env bash
# Memory-ceiling smoke for the production experiment.
#
# The contract: ProductionMix accounts FCTs in streaming sketches, so peak
# memory is set by the in-flight flow window (arrival rate x [FCT + the
# 2xRTOMax endpoint-teardown linger]), NOT by the total flow count. A
# hold-every-sample path would need ~GBs at a million flows; the sketch
# path must finish a 10x larger run inside the same fixed ceiling.
#
# Method: run the same low-rate mice workload at 100k and at 1M flows
# under a tight GOMEMLIMIT (so the GC keeps the heap near the live set
# instead of growing lazily), parse fbsim's own peak-memory line from -v
# output, and require the 1M peak to stay under a flow-count-independent
# ceiling.
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/fbsim" ./cmd/fbsim

# All-mice CDF: keeps per-flow service time tiny so arrivals, not flow
# transmission, dominate the in-flight window.
printf '300 0\n600 0.5\n1200 1.0\n' > "$work/mice.cdf"

# CEILING_MB is calibrated ~1.5x above the observed 1M-flow peak (167 MB
# on the reference box under GOMEMLIMIT=192MiB) and far below what
# holding a million samples would cost.
CEILING_MB=256
run() { # run <flows> <outfile> -> echoes peak MB
  local flows=$1 out=$2 peak
  GOMEMLIMIT=192MiB "$work/fbsim" -exp production -scale tiny \
    -schemes ECMP -cdf "$work/mice.cdf" -load 0.001 \
    -flows "$flows" -seed 2 -v >"$out" 2>"$out.err"
  peak=$(sed -n 's/.*peak memory \([0-9][0-9]*\) MB from OS.*/\1/p' "$out.err")
  if [ -z "$peak" ]; then
    echo "FAIL: no peak-memory line in -v output for $flows flows" >&2
    cat "$out.err" >&2
    exit 1
  fi
  echo "$peak"
}

small_peak=$(run 100000 "$work/small.txt")
big_peak=$(run 1000000 "$work/big.txt")
echo "peak memory: 100k flows = ${small_peak} MB, 1M flows = ${big_peak} MB"

grep -q '1000000/1000000' "$work/big.txt" || {
  echo "FAIL: 1M-flow run did not complete all flows" >&2
  grep -m1 'completed' "$work/big.txt" >&2 || cat "$work/big.txt" >&2
  exit 1
}

if [ "$big_peak" -gt "$CEILING_MB" ]; then
  echo "FAIL: 1M-flow peak ${big_peak} MB exceeds the ${CEILING_MB} MB ceiling" >&2
  echo "(memory must not scale with flow count; 100k peak was ${small_peak} MB)" >&2
  exit 1
fi
# Flat-memory check relative to the small run: 10x the flows may not even
# double the peak (slack absorbs GC/runtime noise, not real growth).
if [ "$big_peak" -gt $((small_peak * 2)) ]; then
  echo "FAIL: 1M-flow peak ${big_peak} MB is more than 2x the 100k-flow peak ${small_peak} MB" >&2
  exit 1
fi

echo "PASS: million-flow production run stays under the ${CEILING_MB} MB ceiling"

# ---- Fluid-engine hyper-scale smoke -----------------------------------
#
# The second contract: the fluid engine completes a 10,240-host run — a
# fabric the packet engine cannot execute at all — inside a small fixed
# memory ceiling. State is per-flow rate allocations plus dense per-link
# arrays, not per-packet objects, so the realistic websearch mix at 20%
# load peaks around 12 MB on the reference box; the ceiling leaves slack
# for GC/runtime noise, not real growth.
FLUID_CEILING_MB=64
GOMEMLIMIT=128MiB "$work/fbsim" -exp production -engine fluid -scale hyper \
  -schemes ECMP -load 0.2 -flows 50000 -seed 2 -v \
  >"$work/hyper.txt" 2>"$work/hyper.err"
hyper_peak=$(sed -n 's/.*peak memory \([0-9][0-9]*\) MB from OS.*/\1/p' "$work/hyper.err")
if [ -z "$hyper_peak" ]; then
  echo "FAIL: no peak-memory line in -v output for the hyper-scale fluid run" >&2
  cat "$work/hyper.err" >&2
  exit 1
fi
echo "peak memory: 10k-host fluid run (50k flows) = ${hyper_peak} MB"

grep -q '50000/50000' "$work/hyper.txt" || {
  echo "FAIL: hyper-scale fluid run did not complete all flows" >&2
  grep -m1 'completed' "$work/hyper.txt" >&2 || cat "$work/hyper.txt" >&2
  exit 1
}
if [ "$hyper_peak" -gt "$FLUID_CEILING_MB" ]; then
  echo "FAIL: hyper-scale fluid peak ${hyper_peak} MB exceeds the ${FLUID_CEILING_MB} MB ceiling" >&2
  exit 1
fi

echo "PASS: 10k-host fluid run stays under the ${FLUID_CEILING_MB} MB ceiling"

# ---- Fluid-engine mega-scale smoke ------------------------------------
#
# The third contract: the incremental solver completes a 102,400-host run
# — ten times the hyper fabric — in seconds of wall clock inside a fixed
# memory ceiling. The solver's state is dense per-link/per-session arrays
# from reusable arenas (zero steady-state allocations), so the peak is set
# by fabric size plus the in-flight flow window, not by flow count: the
# realistic websearch mix at 20% load peaks around 48 MB on the reference
# box. The ceiling leaves ~2x slack for GC/runtime noise, not real growth.
MEGA_CEILING_MB=96
GOMEMLIMIT=128MiB "$work/fbsim" -exp production -engine fluid -scale mega \
  -schemes ECMP -load 0.2 -flows 50000 -seed 2 -v \
  >"$work/mega.txt" 2>"$work/mega.err"
mega_peak=$(sed -n 's/.*peak memory \([0-9][0-9]*\) MB from OS.*/\1/p' "$work/mega.err")
if [ -z "$mega_peak" ]; then
  echo "FAIL: no peak-memory line in -v output for the mega-scale fluid run" >&2
  cat "$work/mega.err" >&2
  exit 1
fi
echo "peak memory: 102k-host fluid run (50k flows) = ${mega_peak} MB"

grep -q '50000/50000' "$work/mega.txt" || {
  echo "FAIL: mega-scale fluid run did not complete all flows" >&2
  grep -m1 'completed' "$work/mega.txt" >&2 || cat "$work/mega.txt" >&2
  exit 1
}
if [ "$mega_peak" -gt "$MEGA_CEILING_MB" ]; then
  echo "FAIL: mega-scale fluid peak ${mega_peak} MB exceeds the ${MEGA_CEILING_MB} MB ceiling" >&2
  exit 1
fi

echo "PASS: 102k-host fluid run stays under the ${MEGA_CEILING_MB} MB ceiling"
