#!/usr/bin/env bash
# Kill-and-resume smoke: run the full tiny-scale evaluation with
# checkpointing on, SIGKILL it at roughly half the uninterrupted run's wall
# time, resume from the checkpoint file, and require the resumed output to
# be byte-identical to the uninterrupted run (modulo the wall-time line).
#
# SIGKILL — not SIGINT — on purpose: the graceful path gets to flush, this
# one does not, so the test exercises the atomic-save guarantee (the file on
# disk is a consistent checkpoint at every instant) plus watermark replay
# verification and the completed-experiment journal on resume.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/fbbench" ./cmd/fbbench
args=(-scale tiny -seed 2)

echo "== uninterrupted golden run"
full_start=$(date +%s%N)
"$workdir/fbbench" "${args[@]}" > "$workdir/full.txt"
full_ns=$(( $(date +%s%N) - full_start ))
half_s=$(awk "BEGIN{printf \"%.2f\", $full_ns/2e9}")

echo "== checkpointed run, SIGKILL after ${half_s}s (~50%)"
"$workdir/fbbench" "${args[@]}" -checkpoint "$workdir/run.ckpt" \
  > "$workdir/part.txt" 2>/dev/null &
pid=$!
sleep "$half_s"
kill -KILL "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

if [ ! -s "$workdir/run.ckpt" ]; then
  echo "FAIL: no checkpoint file survived the SIGKILL" >&2
  exit 1
fi

echo "== resume from the checkpoint"
"$workdir/fbbench" "${args[@]}" -resume "$workdir/run.ckpt" > "$workdir/resumed.txt"

grep -v '^total wall time' "$workdir/full.txt" > "$workdir/full.cmp"
grep -v '^total wall time' "$workdir/resumed.txt" > "$workdir/resumed.cmp"
if ! cmp -s "$workdir/full.cmp" "$workdir/resumed.cmp"; then
  echo "FAIL: resumed output differs from the uninterrupted run" >&2
  diff "$workdir/full.cmp" "$workdir/resumed.cmp" >&2 || true
  exit 1
fi
echo "OK: kill-and-resume output byte-identical to the uninterrupted run"

# Same contract for the production experiment on its own, through fbsim:
# the mix's lazy beacon chains and per-shard sketch merges must replay to
# the same bytes across a mid-flight SIGKILL. fbsim output carries no
# wall-time line, so the comparison is a direct cmp.
go build -o "$workdir/fbsim" ./cmd/fbsim
pargs=(-exp production -scale tiny -flows 300 -seed 2)

echo "== production: uninterrupted golden run"
p_start=$(date +%s%N)
"$workdir/fbsim" "${pargs[@]}" > "$workdir/pfull.txt"
p_ns=$(( $(date +%s%N) - p_start ))
p_half=$(awk "BEGIN{printf \"%.2f\", $p_ns/2e9}")

echo "== production: checkpointed run, SIGKILL after ${p_half}s (~50%)"
"$workdir/fbsim" "${pargs[@]}" -checkpoint "$workdir/prod.ckpt" \
  > "$workdir/ppart.txt" 2>/dev/null &
pid=$!
sleep "$p_half"
kill -KILL "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

if [ ! -s "$workdir/prod.ckpt" ]; then
  echo "FAIL: no production checkpoint file survived the SIGKILL" >&2
  exit 1
fi

echo "== production: resume from the checkpoint"
"$workdir/fbsim" "${pargs[@]}" -resume "$workdir/prod.ckpt" > "$workdir/presumed.txt"

if ! cmp -s "$workdir/pfull.txt" "$workdir/presumed.txt"; then
  echo "FAIL: resumed production output differs from the uninterrupted run" >&2
  diff "$workdir/pfull.txt" "$workdir/presumed.txt" >&2 || true
  exit 1
fi
echo "OK: production kill-and-resume output byte-identical to the uninterrupted run"
