// Package flowbender is a from-scratch reproduction of "FlowBender:
// Flow-level Adaptive Routing for Improved Latency and Throughput in
// Datacenter Networks" (Kabbani, Vamanan, Duchene, Hasan — CoNEXT 2014).
//
// The module contains the FlowBender controller itself (internal/core), the
// full substrate it is evaluated on — a deterministic packet-level
// datacenter fabric simulator (internal/sim, internal/netsim,
// internal/topo), a NewReno+DCTCP transport (internal/tcp), the competing
// ECMP/RPS/DeTail/WCMP path selectors (internal/routing) — and a harness
// that regenerates every table and figure of the paper's evaluation
// (internal/experiments, cmd/fbsim, cmd/fbbench).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// root-level benchmarks (bench_test.go) run a reduced-scale version of each
// experiment.
package flowbender
