// Incast: the partition-aggregate pattern of §4.2.4 — a 1 MB transaction
// fanned out to n workers that all respond at once to one aggregator. The
// job is done when its slowest response lands, so load balancing the
// synchronized responses directly shortens job completion.
//
//	go run ./examples/incast [-fanin 8] [-jobs 60] [-load 0.4]
package main

import (
	"flag"
	"fmt"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

func main() {
	fanIn := flag.Int("fanin", 8, "workers per job")
	jobs := flag.Int("jobs", 60, "jobs to run")
	load := flag.Float64("load", 0.4, "network load")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("Partition-aggregate: %d jobs of 1 MB across %d workers at %.0f%% load\n\n",
		*jobs, *fanIn, *load*100)
	for _, scheme := range []string{"ECMP", "FlowBender"} {
		eng := sim.NewEngine()
		rng := sim.NewRNG(*seed)
		p := topo.SmallScale()
		ft := topo.NewFatTree(eng, p)
		ft.SetSelector(routing.ECMP{})

		cfg := tcp.DefaultConfig()
		if scheme == "FlowBender" {
			cfg.FlowBender = &core.Config{MinEpochGap: 5, DesyncN: true, RNG: rng.Fork("fb")}
		}

		const jobBytes = 1_000_000
		gen := &workload.PartitionAggregate{
			Eng:   eng,
			RNG:   rng.Fork("workload"),
			Hosts: ft.Hosts,
			IDs:   &workload.IDAllocator{},
			Start: func(id netsim.FlowID, src, dst *netsim.Host, size int64) *tcp.Flow {
				return tcp.StartFlow(eng, cfg, id, src, dst, size)
			},
			JobBytes: jobBytes,
			FanIn:    *fanIn,
			MeanInterarrival: workload.JobInterarrival(
				*load, p.BisectionBps(), p.InterPodFraction(), jobBytes),
			MaxJobs: *jobs,
		}
		gen.Run()
		eng.Run(30 * sim.Second)

		var jct stats.Sample
		done := 0
		for _, j := range gen.Jobs {
			if j.Done() {
				done++
				jct.Add(j.CompletionTime().Seconds() * 1000)
			}
		}
		fmt.Printf("%-11s jobs done %d/%d   avg JCT %6.2f ms   p95 %6.2f ms   worst %6.2f ms\n",
			scheme, done, len(gen.Jobs), jct.Mean(), jct.Percentile(95), jct.Max())
	}
}
