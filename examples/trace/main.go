// Trace: record a FlowBender flow's congestion window, path tag, and the
// hotspot queue it escapes from, as a CSV time series (plot it to watch the
// reroute happen).
//
//	go run ./examples/trace > trace.csv
package main

import (
	"fmt"
	"os"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/trace"
	"flowbender/internal/udp"
)

func main() {
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)

	lp := topo.SmallTestbed()
	ls := topo.NewLeafSpine(eng, lp)
	ls.SetSelector(routing.ECMP{})

	cfg := tcp.DefaultConfig()
	cfg.FlowBender = &core.Config{MinEpochGap: 5, DesyncN: true, RNG: rng.Fork("fb")}

	srcs, dsts := ls.TorHosts(0), ls.TorHosts(1)

	// A long TCP flow that will, at some point, share a path with the
	// hotspot below and bend away from it.
	flow := tcp.StartFlow(eng, cfg, 1, ls.Hosts[srcs[2]], ls.Hosts[dsts[2]], 80_000_000)

	// A 7 Gbps pinned UDP hotspot arriving 5 ms in, aimed at whichever
	// uplink the TCP flow initially hashed onto so a collision is certain.
	hot := udp.NewSender(eng, 2, ls.Hosts[srcs[0]], ls.Hosts[dsts[0]], 7*topo.Gbps, 1460)
	ls.Hosts[dsts[0]].Register(2, udp.NewSink())
	hot.PathTag = aimAtFlow(ls, flow, hot)
	eng.At(5*sim.Millisecond, hot.Start)

	// Sample everything every 100 us.
	s := trace.NewSampler(eng, 100*sim.Microsecond)
	cwnd := s.Track("cwnd_bytes", func() float64 { return flow.Sender().Cwnd() })
	tag := s.Track("path_tag", func() float64 { return float64(flow.Sender().PathTag()) })
	alpha := s.Track("dctcp_alpha", func() float64 { return flow.Sender().Alpha() })
	queues := make([]*trace.Series, lp.Spines)
	for i, l := range ls.UpLinks[0] {
		queues[i] = s.Track(fmt.Sprintf("uplink%d_queue", i), trace.QueueBytes(l.AtoB))
	}
	s.Start()

	eng.Run(80 * sim.Millisecond)
	hot.Stop()
	eng.Run(200 * sim.Millisecond)

	all := append([]*trace.Series{cwnd, tag, alpha}, queues...)
	if err := trace.WriteCSV(os.Stdout, all...); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	st := flow.FlowBenderStats()
	fmt.Fprintf(os.Stderr, "flow done=%v fct=%v reroutes=%d (columns: %d samples x %d series)\n",
		flow.Done(), flowFCT(flow), st.Reroutes, cwnd.Len(), len(all))
}

func flowFCT(f *tcp.Flow) any {
	if !f.Done() {
		return "incomplete"
	}
	return f.FCT()
}

// aimAtFlow warms the simulation up for 1 ms, finds the uplink the TCP flow
// hashed onto (the only one carrying TCP bytes), and returns a UDP path tag
// that the ToR's ECMP hash maps onto the same uplink.
func aimAtFlow(ls *topo.LeafSpine, flow *tcp.Flow, hot *udp.Sender) uint32 {
	ls.Eng.Run(1 * sim.Millisecond)
	target := -1
	for i, l := range ls.UpLinks[0] {
		if l.AtoB.TxBytes[netsim.ProtoTCP] > 0 {
			target = i
			break
		}
	}
	if target < 0 {
		return 0
	}
	tor := ls.Tors[0]
	up := make([]int32, ls.P.Spines)
	for i := range up {
		up[i] = int32(ls.P.ServersPerTor + i)
	}
	want := up[target]
	sel := routing.ECMP{}
	for tag := uint32(0); tag < 8; tag++ {
		if sel.Select(tor, hot.Probe(tag), up) == want {
			return tag
		}
	}
	return 0
}
