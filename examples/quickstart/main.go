// Quickstart: build a small fat-tree, race two long TCP flows that ECMP
// would leave colliding on one path, and watch FlowBender disperse them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

func main() {
	for _, useFlowBender := range []bool{false, true} {
		name := "ECMP      "
		if useFlowBender {
			name = "FlowBender"
		}

		// One engine per run: a deterministic discrete-event clock.
		eng := sim.NewEngine()
		rng := sim.NewRNG(7)

		// A 64-server fat-tree: 4 pods, non-oversubscribed ToRs, 4 paths
		// between pods, 10 Gbps access links, 90 us inter-pod RTT.
		ft := topo.NewFatTree(eng, topo.SmallScale())
		ft.SetSelector(routing.ECMP{}) // FlowBender rides plain ECMP switches

		// The transport: DCTCP over NewReno, per the paper's evaluation.
		cfg := tcp.DefaultConfig()
		if useFlowBender {
			// The entire host-side change: attach a FlowBender controller.
			cfg.FlowBender = &core.Config{
				T:           0.05, // reroute when >5% of ACKs are ECN-marked...
				N:           1,    // ...for 1 consecutive RTT
				NumValues:   8,    // V drawn from 8 values
				MinEpochGap: 5,    // §5.1 stability: >=5 RTTs between reroutes
				DesyncN:     true, // §3.4.2: randomize N to avoid reroute waves
				RNG:         rng.Fork("flowbender"),
			}
		}

		// Start 8 x 50 MB flows from the servers of one ToR to the servers
		// of another ToR in a different pod. With 4 inter-pod paths, the
		// best case is 2 flows per path: 80 ms each.
		var flows []*tcp.Flow
		src := ft.TorHosts(0, 0)
		dst := ft.TorHosts(1, 0)
		for i := 0; i < 8; i++ {
			f := tcp.StartFlow(eng, cfg, netsim.FlowID(i+1),
				ft.Hosts[src[i%len(src)]], ft.Hosts[dst[i%len(dst)]], 50_000_000)
			flows = append(flows, f)
		}

		eng.Run(10 * sim.Second)

		var sum, max float64
		reroutes := int64(0)
		for _, f := range flows {
			fct := f.FCT().Seconds() * 1000
			sum += fct
			if fct > max {
				max = fct
			}
			reroutes += f.FlowBenderStats().Reroutes
		}
		fmt.Printf("%s  mean FCT %6.1f ms   max FCT %6.1f ms   (ideal 80 ms, reroutes=%d)\n",
			name, sum/float64(len(flows)), max, reroutes)
	}
}
