// Hotspot: the §4.3.1 experiment — a pinned 6 Gbps UDP flow creates a
// static hotspot on one of four equal-cost paths between two ToRs while a
// 14 Gbps TCP shuffle shares the same paths. FlowBender's TCP flows sense
// the hotspot through ECN and drift away from it; ECMP's flows stay where
// they hashed.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/udp"
	"flowbender/internal/workload"
)

func main() {
	for _, scheme := range []string{"ECMP", "FlowBender"} {
		eng := sim.NewEngine()
		rng := sim.NewRNG(3)

		lp := topo.SmallTestbed() // 4 ToRs x 4 spines: 4 paths per ToR pair
		ls := topo.NewLeafSpine(eng, lp)
		ls.SetSelector(routing.ECMP{})

		cfg := tcp.DefaultConfig()
		if scheme == "FlowBender" {
			cfg.FlowBender = &core.Config{MinEpochGap: 5, DesyncN: true, RNG: rng.Fork("fb")}
		}

		// The pinned hotspot: UDP at 6 Gbps with a fixed path tag.
		srcs, dsts := ls.TorHosts(0), ls.TorHosts(1)
		udpSender := udp.NewSender(eng, 1_000_000, ls.Hosts[srcs[0]], ls.Hosts[dsts[0]], 6*topo.Gbps, 1460)
		ls.Hosts[dsts[0]].Register(1_000_000, udp.NewSink())
		udpSender.Start()

		// The TCP shuffle: 1 MB flows ToR0 -> ToR1 at 14 Gbps aggregate.
		srcHosts := make([]*netsim.Host, len(srcs))
		dstHosts := make([]*netsim.Host, len(dsts))
		for i := range srcs {
			srcHosts[i], dstHosts[i] = ls.Hosts[srcs[i]], ls.Hosts[dsts[i]]
		}
		gen := &workload.AllToAll{
			Eng: eng, RNG: rng.Fork("workload"),
			Hosts: dstHosts, SrcHosts: srcHosts,
			CDF: workload.Fixed(1_000_000),
			IDs: &workload.IDAllocator{},
			Start: func(id netsim.FlowID, src, dst *netsim.Host, size int64) *tcp.Flow {
				return tcp.StartFlow(eng, cfg, id, src, dst, size)
			},
			// 14 Gbps of 1 MB (8 Mb) flows = 1750 flows/s.
			MeanInterarrival: sim.Second / 1750,
		}
		gen.Run()

		// Measure per-uplink TCP rates over an 80 ms window after warmup.
		eng.Run(20 * sim.Millisecond)
		base := make([]int64, lp.Spines)
		baseUDP := make([]int64, lp.Spines)
		for i, l := range ls.UpLinks[0] {
			base[i] = l.AtoB.TxBytes[netsim.ProtoTCP]
			baseUDP[i] = l.AtoB.TxBytes[netsim.ProtoUDP]
		}
		const window = 80 * sim.Millisecond
		eng.Run(20*sim.Millisecond + window)
		gen.Stop()
		udpSender.Stop()

		fmt.Printf("%-11s per-path TCP Gbps:", scheme)
		for i, l := range ls.UpLinks[0] {
			gbps := float64(l.AtoB.TxBytes[netsim.ProtoTCP]-base[i]) * 8 / window.Seconds() / 1e9
			tag := " "
			if l.AtoB.TxBytes[netsim.ProtoUDP]-baseUDP[i] > 0 {
				tag = "*" // the hotspot path carrying the UDP flow
			}
			fmt.Printf("  %5.2f%s", gbps, tag)
		}
		fmt.Println("   (* = path with the 6 Gbps UDP hotspot)")
	}
	fmt.Println("\nA good balancer keeps the starred path's TCP share far below the others'.")
}
