// Linkfailure: the §3.3.2 failure-recovery story. A core uplink is cut
// mid-transfer while routing tables stay stale (reconvergence takes seconds
// in a real fabric). ECMP flows whose hash crosses the dead link stall until
// routing recovers; FlowBender flows re-draw their path tag on the very
// first RTO and route around the cut in tens of milliseconds.
//
//	go run ./examples/linkfailure
package main

import (
	"fmt"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

func main() {
	for _, scheme := range []string{"ECMP", "FlowBender"} {
		eng := sim.NewEngine()
		rng := sim.NewRNG(11)
		p := topo.SmallScale()
		ft := topo.NewFatTree(eng, p)
		ft.SetSelector(routing.ECMP{})

		cfg := tcp.DefaultConfig()
		if scheme == "FlowBender" {
			cfg.FlowBender = &core.Config{MinEpochGap: 5, DesyncN: true, RNG: rng.Fork("fb")}
		}

		// One 10 MB flow per pod-0 host to the matching pod-1 host.
		perPod := p.TorsPerPod * p.ServersPerTor
		var flows []*tcp.Flow
		for i := 0; i < perPod; i++ {
			flows = append(flows, tcp.StartFlow(eng, cfg, netsim.FlowID(i+1),
				ft.Hosts[i], ft.Hosts[perPod+i], 10_000_000))
		}

		// Cut one aggregation-to-core cable 1 ms in; leave tables stale.
		eng.At(1*sim.Millisecond, func() { ft.AggCoreLinks[0][0][0].Fail() })

		eng.Run(2 * sim.Second)

		done, affected := 0, 0
		var worst sim.Time
		for _, f := range flows {
			if f.Sender().Timeouts > 0 {
				affected++
			}
			if f.Done() {
				done++
				if fct := f.FCT(); fct > worst {
					worst = fct
				}
			}
		}
		fmt.Printf("%-11s completed %2d/%d flows; %d hit an RTO; worst FCT of completed: %v\n",
			scheme, done, len(flows), affected, worst)
	}
	fmt.Println("\nECMP flows crossing the cut never finish (static hash, stale routes);")
	fmt.Println("FlowBender recovers within a few RTOs by re-drawing V end-to-end.")
}
