// Websearch: the paper's motivating workload — a latency-sensitive online
// service whose responses aggregate thousands of flows, so tail latency is
// everything. Runs the heavy-tailed all-to-all traffic of §4.2.2 under ECMP
// and FlowBender and reports mean and 99th-percentile latency per flow-size
// bin, like Figures 3 and 4.
//
//	go run ./examples/websearch [-load 0.4] [-flows 800] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

func main() {
	load := flag.Float64("load", 0.4, "network load (fraction of bisection)")
	flows := flag.Int("flows", 800, "number of flows to run")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	results := make(map[string]*stats.BinnedSample)
	for _, scheme := range []string{"ECMP", "FlowBender"} {
		eng := sim.NewEngine()
		rng := sim.NewRNG(*seed)

		p := topo.SmallScale()
		ft := topo.NewFatTree(eng, p)
		ft.SetSelector(routing.ECMP{})

		cfg := tcp.DefaultConfig()
		if scheme == "FlowBender" {
			cfg.FlowBender = &core.Config{
				MinEpochGap: 5, DesyncN: true, RNG: rng.Fork("fb"),
			}
		}

		cdf := workload.WebSearchCDF()
		gen := &workload.AllToAll{
			Eng:   eng,
			RNG:   rng.Fork("workload"), // same stream for both schemes
			Hosts: ft.Hosts,
			CDF:   cdf,
			IDs:   &workload.IDAllocator{},
			Start: func(id netsim.FlowID, src, dst *netsim.Host, size int64) *tcp.Flow {
				return tcp.StartFlow(eng, cfg, id, src, dst, size)
			},
			MeanInterarrival: workload.AggregateInterarrival(
				*load, p.BisectionBps(), p.InterPodFraction(), cdf.Mean()),
			MaxFlows: *flows,
		}
		gen.Run()
		eng.Run(30 * sim.Second)

		binned := &stats.BinnedSample{}
		for _, f := range gen.Flows {
			if f.Done() {
				binned.Add(f.Size, f.FCT().Seconds()*1000)
			}
		}
		results[scheme] = binned
	}

	fmt.Printf("All-to-all web-search workload at %.0f%% load, %d flows\n\n", *load*100, *flows)
	for _, scheme := range []string{"ECMP", "FlowBender"} {
		h := stats.NewHistogram(0.05, 2) // ms buckets
		for b := 0; b < int(stats.NumBins); b++ {
			for _, v := range results[scheme].Bins[b].Values() {
				h.Add(v)
			}
		}
		fmt.Printf("%s flow-completion-time distribution:\n", scheme)
		h.Render(os.Stdout, "ms", 46)
		fmt.Println()
	}
	fmt.Printf("%-14s %19s %19s\n", "", "mean (ms)", "p99 (ms)")
	fmt.Printf("%-14s %9s %9s %9s %9s %9s\n", "flow size", "ECMP", "FlowBndr", "ECMP", "FlowBndr", "speedup@p99")
	for b := 0; b < int(stats.NumBins); b++ {
		e := &results["ECMP"].Bins[b]
		f := &results["FlowBender"].Bins[b]
		fmt.Printf("%-14s %9.2f %9.2f %9.2f %9.2f %9.2fx\n",
			stats.SizeBin(b), e.Mean(), f.Mean(), e.Percentile(99), f.Percentile(99),
			stats.Ratio(e.Percentile(99), f.Percentile(99)))
	}
}
